//! Compact directed multigraph with positive integer weights.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a vertex; vertices are always `0..n`.
pub type NodeId = usize;

/// Identifies an edge by its insertion index.
pub type EdgeId = usize;

/// A directed weighted edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Tail vertex (the edge points away from this vertex).
    pub from: NodeId,
    /// Head vertex (the edge points into this vertex).
    pub to: NodeId,
    /// Positive integer weight; `1` for unweighted graphs.
    pub weight: u64,
}

/// A frozen directed multigraph.
///
/// Adjacency is stored in CSR form in both directions, so iterating
/// out-edges and in-edges of a vertex are both `O(degree)` with no
/// allocation. Graphs are immutable after construction; build them with
/// [`GraphBuilder`].
///
/// # Examples
///
/// ```
/// use graphkit::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1);
/// b.add_edge(1, 2, 1);
/// b.add_edge(0, 2, 5);
/// let g = b.build();
///
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.out_edges(0).count(), 2);
/// assert_eq!(g.in_edges(2).count(), 2);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct DiGraph {
    pub(crate) n: usize,
    pub(crate) edges: Vec<Edge>,
    pub(crate) out_index: Csr,
    pub(crate) in_index: Csr,
    /// Deduplicated undirected adjacency (CONGEST communication
    /// neighbors), precomputed once at build time so neighbor iteration
    /// is allocation-free.
    pub(crate) undirected: Csr,
    pub(crate) unweighted: bool,
}

#[derive(Clone, Serialize, Deserialize)]
pub(crate) struct Csr {
    pub(crate) offsets: Vec<u32>,
    pub(crate) items: Vec<u32>,
}

impl Csr {
    pub(crate) fn build(n: usize, keys: impl Iterator<Item = usize> + Clone, m: usize) -> Csr {
        let mut counts = vec![0u32; n + 1];
        for k in keys.clone() {
            counts[k + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; m];
        for (edge_id, k) in keys.enumerate() {
            items[cursor[k] as usize] = edge_id as u32;
            cursor[k] += 1;
        }
        Csr { offsets, items }
    }

    #[inline]
    pub(crate) fn slice(&self, k: usize) -> &[u32] {
        &self.items[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }
}

/// Deduplicated undirected adjacency in one `O(n + m)` pass: per vertex,
/// successors then predecessors in first-occurrence order, with a
/// stamp array standing in for a per-vertex hash set.
fn build_undirected(n: usize, edges: &[Edge], out_index: &Csr, in_index: &Csr) -> Csr {
    let mut mark = vec![u32::MAX; n];
    let mut offsets = vec![0u32; n + 1];
    let mut items = Vec::with_capacity(2 * edges.len());
    for v in 0..n {
        let stamp = v as u32;
        for &e in out_index.slice(v) {
            let u = edges[e as usize].to;
            if mark[u] != stamp {
                mark[u] = stamp;
                items.push(u as u32);
            }
        }
        for &e in in_index.slice(v) {
            let u = edges[e as usize].from;
            if mark[u] != stamp {
                mark[u] = stamp;
                items.push(u as u32);
            }
        }
        offsets[v + 1] = items.len() as u32;
    }
    items.shrink_to_fit();
    Csr { offsets, items }
}

impl DiGraph {
    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when every edge has weight 1.
    #[inline]
    pub fn is_unweighted(&self) -> bool {
        self.unweighted
    }

    /// All vertex ids, `0..n`.
    #[inline]
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// All edges with their ids, in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// Ids of edges leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_index.slice(v).iter().map(|&e| e as EdgeId)
    }

    /// Ids of edges entering `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_index.slice(v).iter().map(|&e| e as EdgeId)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_index.slice(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_index.slice(v).len()
    }

    /// Successor vertices of `v` (with multiplicity for parallel edges).
    pub fn successors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(v).map(move |e| self.edges[e].to)
    }

    /// Predecessor vertices of `v` (with multiplicity for parallel edges).
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(v).map(move |e| self.edges[e].from)
    }

    /// Neighbors of `v` in the *underlying undirected* graph, i.e. the
    /// CONGEST communication neighbors, deduplicated (successors first,
    /// then predecessors, in first-occurrence order).
    ///
    /// Borrows the CSR precomputed at build time — no per-call
    /// allocation, `O(1)` per neighbor.
    pub fn undirected_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.undirected.slice(v).iter().map(|&u| u as NodeId)
    }

    /// Number of distinct undirected neighbors of `v` (its degree in the
    /// communication graph).
    #[inline]
    pub fn undirected_degree(&self, v: NodeId) -> usize {
        self.undirected.slice(v).len()
    }

    /// Returns a graph with every edge reversed; edge ids are preserved.
    pub fn reversed(&self) -> DiGraph {
        let mut b = GraphBuilder::new(self.n);
        for e in &self.edges {
            b.add_edge(e.to, e.from, e.weight);
        }
        b.build()
    }

    /// Returns a copy with the given edges removed. Edge ids are *not*
    /// preserved; use this only where ids do not matter (reference
    /// algorithms). The vertex set is unchanged.
    pub fn without_edges(&self, remove: &HashSet<EdgeId>) -> DiGraph {
        let mut b = GraphBuilder::new(self.n);
        for (id, e) in self.edges() {
            if !remove.contains(&id) {
                b.add_edge(e.from, e.to, e.weight);
            }
        }
        b.build()
    }

    /// A stable 64-bit identity of the graph's full structure: vertex
    /// count, edge list (order, endpoints, weights), and the precomputed
    /// CSR indexes.
    ///
    /// The fingerprint is an FNV-1a hash of [`DiGraph::to_snapshot`], so
    /// it is identical across processes, platforms, and snapshot round
    /// trips — two graphs fingerprint equal iff their snapshots are
    /// byte-identical. Artifact caches key on it to decide whether a
    /// persisted artifact still describes the graph in hand.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in &self.to_snapshot() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Largest edge weight (`0` for an edgeless graph).
    pub fn max_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.weight).max().unwrap_or(0)
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("nodes", &self.n)
            .field("edges", &self.edges.len())
            .field("unweighted", &self.unweighted)
            .finish()
    }
}

/// Incremental constructor for [`DiGraph`].
///
/// # Examples
///
/// ```
/// use graphkit::GraphBuilder;
///
/// let mut b = GraphBuilder::new(2);
/// let e = b.add_edge(0, 1, 7);
/// let g = b.build();
/// assert_eq!(g.edge(e).weight, 7);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices (`0..n`).
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices configured so far.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grows the vertex set to at least `n` vertices.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds one fresh vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.n - 1
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, if `from == to` (self loops
    /// are meaningless for replacement paths), or if `weight == 0`
    /// (weights must be positive integers, per the paper's model).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: u64) -> EdgeId {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        assert_ne!(from, to, "self loops are not allowed");
        assert!(weight > 0, "edge weights must be positive integers");
        self.edges.push(Edge { from, to, weight });
        self.edges.len() - 1
    }

    /// Adds an unweighted (weight-1) directed edge.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        self.add_edge(from, to, 1)
    }

    /// Adds `u -> v` and `v -> u` weight-1 edges, returning both ids.
    pub fn add_bidirectional(&mut self, u: NodeId, v: NodeId) -> (EdgeId, EdgeId) {
        (self.add_arc(u, v), self.add_arc(v, u))
    }

    /// Returns `true` when some edge `from -> to` already exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Freezes the builder into an immutable [`DiGraph`].
    pub fn build(self) -> DiGraph {
        let m = self.edges.len();
        let out_index = Csr::build(self.n, self.edges.iter().map(|e| e.from), m);
        let in_index = Csr::build(self.n, self.edges.iter().map(|e| e.to), m);
        let undirected = build_undirected(self.n, &self.edges, &out_index, &in_index);
        let unweighted = self.edges.iter().all(|e| e.weight == 1);
        DiGraph {
            n: self.n,
            edges: self.edges,
            out_index,
            in_index,
            undirected,
            unweighted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1);
        b.add_arc(1, 3);
        b.add_arc(0, 2);
        b.add_arc(2, 3);
        b.build()
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        let succ: Vec<_> = g.successors(0).collect();
        assert_eq!(succ, vec![1, 2]);
        let pred: Vec<_> = g.predecessors(3).collect();
        assert_eq!(pred, vec![1, 2]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn reversal_swaps_directions() {
        let g = diamond().reversed();
        let succ: Vec<_> = g.successors(3).collect();
        assert_eq!(succ, vec![1, 2]);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn undirected_neighbors_deduplicate() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        b.add_arc(1, 0);
        let g = b.build();
        assert_eq!(g.undirected_neighbors(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.undirected_degree(0), 1);
    }

    #[test]
    fn undirected_csr_matches_naive_dedup() {
        // First-occurrence order: successors, then predecessors.
        let mut b = GraphBuilder::new(5);
        b.add_arc(0, 3);
        b.add_arc(0, 1);
        b.add_arc(2, 0);
        b.add_arc(3, 0); // duplicate neighbor via reverse edge
        b.add_arc(0, 3); // parallel edge
        let g = b.build();
        assert_eq!(g.undirected_neighbors(0).collect::<Vec<_>>(), vec![3, 1, 2]);
        assert_eq!(g.undirected_degree(0), 3);
        assert_eq!(g.undirected_neighbors(4).count(), 0);
        // Cross-check every vertex against a HashSet-based dedup.
        for v in g.nodes() {
            let mut seen = HashSet::new();
            let mut expect = Vec::new();
            for u in g.successors(v).chain(g.predecessors(v)) {
                if seen.insert(u) {
                    expect.push(u);
                }
            }
            assert_eq!(
                g.undirected_neighbors(v).collect::<Vec<_>>(),
                expect,
                "vertex {v}"
            );
        }
    }

    #[test]
    fn without_edges_drops_only_requested() {
        let g = diamond();
        let removed: HashSet<_> = [1usize].into_iter().collect();
        let h = g.without_edges(&removed);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(h.node_count(), 4);
        assert!(h.edges().all(|(_, e)| !(e.from == 1 && e.to == 3)));
    }

    #[test]
    fn unweighted_flag() {
        assert!(diamond().is_unweighted());
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        assert!(!b.build().is_unweighted());
    }

    #[test]
    fn parallel_edges_supported() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        b.add_arc(0, 1);
        let g = b.build();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(1);
        b.add_arc(0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let g = diamond();
        // Stable: the same construction and a snapshot round trip agree.
        assert_eq!(g.fingerprint(), diamond().fingerprint());
        assert_eq!(
            DiGraph::from_snapshot(&g.to_snapshot())
                .unwrap()
                .fingerprint(),
            g.fingerprint()
        );
        // Sensitive: weights, edge order, and extra vertices all count.
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1);
        b.add_arc(1, 3);
        b.add_arc(0, 2);
        b.add_edge(2, 3, 2);
        assert_ne!(b.build().fingerprint(), g.fingerprint());
        let mut b = GraphBuilder::new(4);
        b.add_arc(1, 3);
        b.add_arc(0, 1);
        b.add_arc(0, 2);
        b.add_arc(2, 3);
        assert_ne!(b.build().fingerprint(), g.fingerprint());
        let mut b = GraphBuilder::new(5);
        b.add_arc(0, 1);
        b.add_arc(1, 3);
        b.add_arc(0, 2);
        b.add_arc(2, 3);
        assert_ne!(b.build().fingerprint(), g.fingerprint());
    }

    #[test]
    fn builder_grows() {
        let mut b = GraphBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        b.ensure_nodes(5);
        b.add_arc(a, c);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
    }
}
