//! The given `s`-`t` shortest path `P` and its validation.

use std::collections::HashSet;
use std::fmt;

use crate::alg::dijkstra;
use crate::{DiGraph, Dist, EdgeId, NodeId};

/// Errors raised when constructing or validating an [`StPath`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The edge sequence is empty; `P` must contain at least one edge.
    Empty,
    /// Consecutive edges do not share an endpoint.
    Disconnected {
        /// Index in the edge sequence where continuity breaks.
        position: usize,
    },
    /// A vertex repeats; shortest paths are simple.
    RepeatedVertex(NodeId),
    /// The path is not a shortest `s`-`t` path in the graph.
    NotShortest {
        /// Total weight of the supplied path.
        path_length: Dist,
        /// True shortest-path distance from `s` to `t`.
        shortest: Dist,
    },
    /// No edge `from -> to` exists in the graph.
    MissingEdge {
        /// Tail of the missing edge.
        from: NodeId,
        /// Head of the missing edge.
        to: NodeId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path must contain at least one edge"),
            PathError::Disconnected { position } => {
                write!(
                    f,
                    "edges at positions {} and {} do not meet",
                    position,
                    position + 1
                )
            }
            PathError::RepeatedVertex(v) => write!(f, "vertex {v} repeats; P must be simple"),
            PathError::NotShortest {
                path_length,
                shortest,
            } => write!(
                f,
                "path has length {path_length} but the s-t distance is {shortest}"
            ),
            PathError::MissingEdge { from, to } => {
                write!(f, "graph has no edge {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A validated simple `s`-`t` path: the object `P` of the replacement-paths
/// problem.
///
/// Following the paper's notation, `P = (s = v_0, v_1, ..., v_{h_st} = t)`;
/// [`StPath::hops`] is `h_st`. The path stores both the vertex sequence and
/// the concrete edge ids so that "avoiding the edges of `P`" is
/// unambiguous even in multigraphs.
///
/// # Examples
///
/// ```
/// use graphkit::{GraphBuilder, StPath};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_arc(0, 1);
/// b.add_arc(1, 2);
/// b.add_arc(2, 3);
/// b.add_arc(0, 3); // a competing edge, but P below is still shortest? no: 0->3 is shorter
/// let g = b.build();
///
/// // 0->3 has length 1, so the 3-hop path is *not* shortest:
/// let p = StPath::from_nodes(&g, &[0, 1, 2, 3]).unwrap();
/// assert!(p.validate_shortest(&g).is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StPath {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
    edge_set: HashSet<EdgeId>,
}

impl StPath {
    /// Builds a path from a sequence of edge ids.
    pub fn new(graph: &DiGraph, edges: Vec<EdgeId>) -> Result<StPath, PathError> {
        if edges.is_empty() {
            return Err(PathError::Empty);
        }
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(graph.edge(edges[0]).from);
        for (i, &e) in edges.iter().enumerate() {
            let edge = graph.edge(e);
            if edge.from != *nodes.last().expect("nodes is non-empty") {
                return Err(PathError::Disconnected {
                    position: i.saturating_sub(1),
                });
            }
            nodes.push(edge.to);
        }
        let mut seen = HashSet::with_capacity(nodes.len());
        for &v in &nodes {
            if !seen.insert(v) {
                return Err(PathError::RepeatedVertex(v));
            }
        }
        let edge_set = edges.iter().copied().collect();
        Ok(StPath {
            nodes,
            edges,
            edge_set,
        })
    }

    /// Builds a path from a vertex sequence, resolving each hop to the
    /// lightest edge between the two vertices.
    pub fn from_nodes(graph: &DiGraph, nodes: &[NodeId]) -> Result<StPath, PathError> {
        if nodes.len() < 2 {
            return Err(PathError::Empty);
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let (from, to) = (w[0], w[1]);
            let best = graph
                .out_edges(from)
                .filter(|&e| graph.edge(e).to == to)
                .min_by_key(|&e| graph.edge(e).weight)
                .ok_or(PathError::MissingEdge { from, to })?;
            edges.push(best);
        }
        StPath::new(graph, edges)
    }

    /// The source vertex `s = v_0`.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The target vertex `t = v_{h_st}`.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty")
    }

    /// `h_st`: the number of edges (hops) in the path.
    #[inline]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// The vertex sequence `v_0, ..., v_{h_st}`.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge-id sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The vertex at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > h_st`.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// The `i`-th edge `(v_i, v_{i+1})`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= h_st`.
    #[inline]
    pub fn edge(&self, i: usize) -> EdgeId {
        self.edges[i]
    }

    /// Returns `true` when `e` is one of the path's edges.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edge_set.contains(&e)
    }

    /// The set of path edge ids.
    #[inline]
    pub fn edge_set(&self) -> &HashSet<EdgeId> {
        &self.edge_set
    }

    /// Index of `v` in the path, if present. `O(h_st)`.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&u| u == v)
    }

    /// Total weight of the path.
    pub fn length(&self, graph: &DiGraph) -> Dist {
        self.edges
            .iter()
            .map(|&e| Dist::new(graph.edge(e).weight))
            .sum()
    }

    /// Weight of the prefix `P[s, v_i]`.
    pub fn prefix_length(&self, graph: &DiGraph, i: usize) -> Dist {
        self.edges[..i]
            .iter()
            .map(|&e| Dist::new(graph.edge(e).weight))
            .sum()
    }

    /// Weight of the suffix `P[v_i, t]`.
    pub fn suffix_length(&self, graph: &DiGraph, i: usize) -> Dist {
        self.edges[i..]
            .iter()
            .map(|&e| Dist::new(graph.edge(e).weight))
            .sum()
    }

    /// Checks that the path is a shortest `s`-`t` path in `graph`.
    pub fn validate_shortest(&self, graph: &DiGraph) -> Result<(), PathError> {
        let dist = dijkstra(graph, self.source(), |_| true);
        let shortest = dist[self.target()];
        let own = self.length(graph);
        if own != shortest {
            return Err(PathError::NotShortest {
                path_length: own,
                shortest,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_arc(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn from_nodes_resolves_edges() {
        let g = line(4);
        let p = StPath::from_nodes(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(p.source(), 0);
        assert_eq!(p.target(), 3);
        assert_eq!(p.length(&g), Dist::new(3));
        assert!(p.validate_shortest(&g).is_ok());
    }

    #[test]
    fn prefix_and_suffix_lengths() {
        let g = line(5);
        let p = StPath::from_nodes(&g, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(p.prefix_length(&g, 0), Dist::ZERO);
        assert_eq!(p.prefix_length(&g, 3), Dist::new(3));
        assert_eq!(p.suffix_length(&g, 3), Dist::new(1));
        assert_eq!(p.suffix_length(&g, 0), Dist::new(4));
    }

    #[test]
    fn rejects_disconnected_sequence() {
        let g = line(4);
        // edges 0 (0->1) and 2 (2->3) do not meet
        assert!(matches!(
            StPath::new(&g, vec![0, 2]),
            Err(PathError::Disconnected { .. })
        ));
    }

    #[test]
    fn rejects_missing_edge() {
        let g = line(3);
        assert!(matches!(
            StPath::from_nodes(&g, &[0, 2]),
            Err(PathError::MissingEdge { from: 0, to: 2 })
        ));
    }

    #[test]
    fn rejects_empty() {
        let g = line(3);
        assert_eq!(StPath::new(&g, vec![]), Err(PathError::Empty));
        assert_eq!(StPath::from_nodes(&g, &[0]), Err(PathError::Empty));
    }

    #[test]
    fn rejects_repeated_vertex() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(2, 1);
        let g = b.build();
        assert!(matches!(
            StPath::new(&g, vec![0, 1, 2]),
            Err(PathError::RepeatedVertex(1))
        ));
    }

    #[test]
    fn detects_non_shortest() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(0, 2);
        let g = b.build();
        let p = StPath::from_nodes(&g, &[0, 1, 2]).unwrap();
        assert!(matches!(
            p.validate_shortest(&g),
            Err(PathError::NotShortest { .. })
        ));
    }

    #[test]
    fn from_nodes_prefers_lightest_parallel_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5);
        let cheap = b.add_edge(0, 1, 2);
        let g = b.build();
        let p = StPath::from_nodes(&g, &[0, 1]).unwrap();
        assert_eq!(p.edge(0), cheap);
        assert_eq!(p.length(&g), Dist::new(2));
    }
}
