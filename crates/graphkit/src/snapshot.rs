//! Byte codec for [`DiGraph`]: the payload of the graph section in a
//! `rpaths-store` snapshot file.
//!
//! The encoding is a flat little-endian dump of the graph *including*
//! its precomputed CSR indexes, so a decoded graph is ready for
//! `Network::new` without re-deriving adjacency:
//!
//! ```text
//! n               u64
//! m               u64
//! edges           m × { from u32, to u32, weight u64 }
//! out_index       (n + 1) × u32 offsets, m × u32 edge ids
//! in_index        (n + 1) × u32 offsets, m × u32 edge ids
//! undirected_len  u64
//! undirected      (n + 1) × u32 offsets, undirected_len × u32 node ids
//! ```
//!
//! [`DiGraph::from_snapshot`] never trusts its input: every array is
//! bounds- and shape-checked (offsets monotone and spanning, edge
//! endpoints in range, each edge id indexed exactly once per direction)
//! and any violation is a structured [`SnapshotError`], never a panic.
//! Whole-payload integrity (bit flips) is the store's job — sections
//! carry checksums there — so validation here targets writer bugs and
//! logically inconsistent payloads.

use std::fmt;

use crate::graph::{Csr, DiGraph, Edge};

/// Why a graph payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload parsed but violates a graph invariant.
    Malformed(String),
    /// Well-formed payload followed by unexpected extra bytes.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        after: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { expected, got } => {
                write!(
                    f,
                    "graph payload truncated: needed {expected} bytes, got {got}"
                )
            }
            SnapshotError::Malformed(detail) => write!(f, "malformed graph payload: {detail}"),
            SnapshotError::TrailingBytes { after } => {
                write!(f, "graph payload has trailing bytes after offset {after}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated {
            expected: usize::MAX,
            got: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                expected: end,
                got: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>, SnapshotError> {
        let raw = self.take(
            count
                .checked_mul(4)
                .ok_or(SnapshotError::Malformed("array length overflows".into()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_csr(out: &mut Vec<u8>, csr: &Csr) {
    for &o in &csr.offsets {
        push_u32(out, o);
    }
    for &i in &csr.items {
        push_u32(out, i);
    }
}

/// Decodes one CSR (offsets then items) and checks its shape: `n + 1`
/// offsets starting at 0, monotone, ending exactly at `items_len`, with
/// every item below `item_bound`.
fn read_csr(
    r: &mut Reader<'_>,
    what: &str,
    n: usize,
    items_len: usize,
    item_bound: usize,
) -> Result<Csr, SnapshotError> {
    let offsets = r.u32_vec(n + 1)?;
    if offsets[0] != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{what} offsets do not start at 0"
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed(format!(
            "{what} offsets are not monotone"
        )));
    }
    if offsets[n] as usize != items_len {
        return Err(SnapshotError::Malformed(format!(
            "{what} offsets end at {} but {items_len} items were promised",
            offsets[n]
        )));
    }
    let items = r.u32_vec(items_len)?;
    if let Some(&bad) = items.iter().find(|&&i| i as usize >= item_bound) {
        return Err(SnapshotError::Malformed(format!(
            "{what} item {bad} out of range (bound {item_bound})"
        )));
    }
    Ok(Csr { offsets, items })
}

/// Checks that `csr` indexes every edge id exactly once and that the
/// edge listed under vertex `v` really has `v` as its `key` endpoint.
fn check_edge_index(
    csr: &Csr,
    what: &str,
    n: usize,
    edges: &[Edge],
    key: impl Fn(&Edge) -> usize,
) -> Result<(), SnapshotError> {
    let mut seen = vec![false; edges.len()];
    for v in 0..n {
        for &e in csr.slice(v) {
            let e = e as usize;
            if seen[e] {
                return Err(SnapshotError::Malformed(format!(
                    "{what} indexes edge {e} twice"
                )));
            }
            seen[e] = true;
            if key(&edges[e]) != v {
                return Err(SnapshotError::Malformed(format!(
                    "{what} lists edge {e} under vertex {v}, but its endpoint is {}",
                    key(&edges[e])
                )));
            }
        }
    }
    Ok(())
}

impl DiGraph {
    /// Encodes the graph — edges plus all precomputed CSR indexes — as
    /// the flat little-endian payload documented at the module level.
    ///
    /// The inverse is [`DiGraph::from_snapshot`]; the round trip is
    /// bit-identical.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let n = self.n;
        let m = self.edges.len();
        let und = self.undirected.items.len();
        let mut out =
            Vec::with_capacity(16 + 16 * m + 2 * (4 * (n + 1) + 4 * m) + 8 + 4 * (n + 1) + 4 * und);
        push_u64(&mut out, n as u64);
        push_u64(&mut out, m as u64);
        for e in &self.edges {
            push_u32(&mut out, e.from as u32);
            push_u32(&mut out, e.to as u32);
            push_u64(&mut out, e.weight);
        }
        push_csr(&mut out, &self.out_index);
        push_csr(&mut out, &self.in_index);
        push_u64(&mut out, und as u64);
        push_csr(&mut out, &self.undirected);
        out
    }

    /// Decodes a payload produced by [`DiGraph::to_snapshot`],
    /// validating every structural invariant.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload ends early,
    /// [`SnapshotError::Malformed`] when an invariant fails (endpoint
    /// out of range, self loop, zero weight, inconsistent CSR), and
    /// [`SnapshotError::TrailingBytes`] when bytes remain after the
    /// promised structure. Never panics on untrusted input.
    pub fn from_snapshot(bytes: &[u8]) -> Result<DiGraph, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        let n64 = r.u64()?;
        let m64 = r.u64()?;
        // Node and edge ids are stored as u32 throughout the CSRs.
        if n64 > u32::MAX as u64 || m64 > u32::MAX as u64 {
            return Err(SnapshotError::Malformed(format!(
                "graph too large for the format: n = {n64}, m = {m64}"
            )));
        }
        let n = n64 as usize;
        let m = m64 as usize;
        let mut edges = Vec::with_capacity(m);
        for i in 0..m {
            let from = r.u32()? as usize;
            let to = r.u32()? as usize;
            let weight = r.u64()?;
            if from >= n || to >= n {
                return Err(SnapshotError::Malformed(format!(
                    "edge {i} endpoint out of range ({from} -> {to}, n = {n})"
                )));
            }
            if from == to {
                return Err(SnapshotError::Malformed(format!("edge {i} is a self loop")));
            }
            if weight == 0 {
                return Err(SnapshotError::Malformed(format!(
                    "edge {i} has zero weight"
                )));
            }
            edges.push(Edge { from, to, weight });
        }
        let out_index = read_csr(&mut r, "out_index", n, m, m.max(1))?;
        check_edge_index(&out_index, "out_index", n, &edges, |e| e.from)?;
        let in_index = read_csr(&mut r, "in_index", n, m, m.max(1))?;
        check_edge_index(&in_index, "in_index", n, &edges, |e| e.to)?;
        let und_len = r.u64()?;
        if und_len > 2 * m as u64 {
            return Err(SnapshotError::Malformed(format!(
                "undirected item count {und_len} exceeds 2m = {}",
                2 * m
            )));
        }
        let undirected = read_csr(&mut r, "undirected", n, und_len as usize, n.max(1))?;
        if r.pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes { after: r.pos });
        }
        let unweighted = edges.iter().all(|e| e.weight == 1);
        Ok(DiGraph {
            n,
            edges,
            out_index,
            in_index,
            undirected,
            unweighted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{metro_ring, power_law_digraph, random_weighted_digraph};
    use crate::GraphBuilder;

    #[test]
    fn round_trip_is_bit_identical() {
        for g in [
            metro_ring(9),
            power_law_digraph(40, 3),
            random_weighted_digraph(25, 60, 9, 7),
            GraphBuilder::new(3).build(), // edgeless
            GraphBuilder::new(0).build(), // empty
        ] {
            let bytes = g.to_snapshot();
            let back = DiGraph::from_snapshot(&bytes).expect("decodes");
            assert_eq!(back.to_snapshot(), bytes);
            assert_eq!(back.node_count(), g.node_count());
            assert_eq!(back.edge_count(), g.edge_count());
            assert_eq!(back.is_unweighted(), g.is_unweighted());
            for v in g.nodes() {
                assert_eq!(
                    back.undirected_neighbors(v).collect::<Vec<_>>(),
                    g.undirected_neighbors(v).collect::<Vec<_>>()
                );
                assert_eq!(
                    back.successors(v).collect::<Vec<_>>(),
                    g.successors(v).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn truncation_is_structured() {
        let bytes = metro_ring(5).to_snapshot();
        for cut in 0..bytes.len() {
            match DiGraph::from_snapshot(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("decoded a {cut}-byte prefix of {}", bytes.len()),
            }
        }
    }

    #[test]
    fn rejects_logical_corruption() {
        let g = metro_ring(4);
        let mut bytes = g.to_snapshot();
        // Point edge 0's `to` endpoint out of range.
        bytes[16 + 4..16 + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        match DiGraph::from_snapshot(&bytes) {
            Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = metro_ring(4).to_snapshot();
        bytes.push(0);
        assert!(matches!(
            DiGraph::from_snapshot(&bytes),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }
}
