//! Extended-natural distances: `u64` values plus an unreachable sentinel.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// A shortest-path distance: either a finite non-negative integer or
/// infinity ("no path").
///
/// Arithmetic saturates at infinity, so min-plus computations never
/// overflow and never accidentally treat "unreachable" as a huge finite
/// value. Internally infinity is `u64::MAX`, which the constructor
/// [`Dist::new`] refuses as a finite value.
///
/// # Examples
///
/// ```
/// use graphkit::Dist;
///
/// let a = Dist::new(3);
/// let b = Dist::new(4);
/// assert_eq!(a + b, Dist::new(7));
/// assert_eq!((a + Dist::INF), Dist::INF);
/// assert!(a < Dist::INF);
/// assert_eq!(Dist::INF.min(b), b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dist(u64);

impl Dist {
    /// The zero distance.
    pub const ZERO: Dist = Dist(0);
    /// The unreachable sentinel; greater than every finite distance.
    pub const INF: Dist = Dist(u64::MAX);

    /// Creates a finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX`, which is reserved for [`Dist::INF`].
    #[inline]
    pub fn new(value: u64) -> Dist {
        assert_ne!(value, u64::MAX, "u64::MAX is reserved for Dist::INF");
        Dist(value)
    }

    /// Returns `true` when the distance is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 != u64::MAX
    }

    /// Returns the finite value, or `None` for [`Dist::INF`].
    #[inline]
    pub fn finite(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Returns the underlying `u64`, with `u64::MAX` meaning infinity.
    ///
    /// Useful for wire encodings; prefer [`Dist::finite`] in algorithm
    /// logic.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a distance from its [`Dist::raw`] encoding.
    #[inline]
    pub fn from_raw(raw: u64) -> Dist {
        Dist(raw)
    }

    /// Saturating multiplication by a scalar (infinity stays infinity).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Dist {
        if !self.is_finite() {
            return Dist::INF;
        }
        match self.0.checked_mul(k) {
            Some(v) if v != u64::MAX => Dist(v),
            _ => Dist::INF,
        }
    }
}

impl Add for Dist {
    type Output = Dist;

    #[inline]
    fn add(self, rhs: Dist) -> Dist {
        if !self.is_finite() || !rhs.is_finite() {
            return Dist::INF;
        }
        match self.0.checked_add(rhs.0) {
            Some(v) if v != u64::MAX => Dist(v),
            _ => Dist::INF,
        }
    }
}

impl Add<u64> for Dist {
    type Output = Dist;

    #[inline]
    fn add(self, rhs: u64) -> Dist {
        self + Dist(rhs.min(u64::MAX - 1))
    }
}

impl Sum for Dist {
    fn sum<I: Iterator<Item = Dist>>(iter: I) -> Dist {
        iter.fold(Dist::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Dist {
    fn from(value: u64) -> Dist {
        Dist::new(value)
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "∞")
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_addition() {
        assert_eq!(Dist::new(2) + Dist::new(3), Dist::new(5));
        assert_eq!(Dist::ZERO + Dist::new(9), Dist::new(9));
    }

    #[test]
    fn infinity_saturates() {
        assert_eq!(Dist::INF + Dist::new(1), Dist::INF);
        assert_eq!(Dist::new(1) + Dist::INF, Dist::INF);
        assert_eq!(Dist::INF + Dist::INF, Dist::INF);
    }

    #[test]
    fn near_overflow_saturates_to_inf() {
        let big = Dist::new(u64::MAX - 1);
        assert_eq!(big + Dist::new(5), Dist::INF);
        assert_eq!(big.saturating_mul(2), Dist::INF);
    }

    #[test]
    fn ordering_places_inf_last() {
        let mut v = vec![Dist::INF, Dist::new(4), Dist::ZERO, Dist::new(100)];
        v.sort();
        assert_eq!(v, vec![Dist::ZERO, Dist::new(4), Dist::new(100), Dist::INF]);
    }

    #[test]
    fn scalar_addition() {
        assert_eq!(Dist::new(7) + 3u64, Dist::new(10));
        assert_eq!(Dist::INF + 3u64, Dist::INF);
    }

    #[test]
    fn sum_of_distances() {
        let total: Dist = [1u64, 2, 3].iter().map(|&w| Dist::new(w)).sum();
        assert_eq!(total, Dist::new(6));
    }

    #[test]
    fn raw_round_trip() {
        for d in [Dist::ZERO, Dist::new(42), Dist::INF] {
            assert_eq!(Dist::from_raw(d.raw()), d);
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_sentinel() {
        let _ = Dist::new(u64::MAX);
    }
}
