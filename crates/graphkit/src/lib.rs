//! Graph substrate for the distributed replacement-paths reproduction.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about graphs *outside* the CONGEST model:
//!
//! - [`DiGraph`]: a compact directed multigraph with positive integer
//!   weights, indexed adjacency in both directions, and cheap edge lookups.
//! - [`StPath`]: a validated `s`-`t` shortest path, the object `P` that the
//!   replacement-paths problem is defined relative to.
//! - [`Dist`]: an extended-natural distance value (`u64` plus infinity)
//!   with saturating arithmetic, so "no path" propagates safely through
//!   min-plus computations.
//! - [`gen`]: graph families used by tests, examples, and benchmarks —
//!   random digraphs with a planted shortest path, ladder graphs with
//!   tunable detour lengths, grids, layered DAGs, and the Θ(D) family from
//!   the paper's Theorem 2.
//! - [`alg`]: centralized reference algorithms (BFS, Dijkstra, hop-bounded
//!   distances, undirected eccentricity/diameter) and the ground-truth
//!   replacement-paths oracle used to validate every distributed
//!   algorithm in the workspace.
//! - a snapshot codec ([`DiGraph::to_snapshot`] /
//!   [`DiGraph::from_snapshot`]): a defensive little-endian byte
//!   encoding of a graph *with* its precomputed CSR indexes, used as the
//!   graph section of the `rpaths-store` single-file snapshot format.
//!
//! Nothing in this crate knows about rounds or messages; the CONGEST
//! simulation lives in the `congest` crate and the paper's algorithms in
//! `rpaths-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg;
mod dist;
pub mod gen;
mod graph;
mod path;
mod snapshot;

pub use dist::Dist;
pub use graph::{DiGraph, Edge, EdgeId, GraphBuilder, NodeId};
pub use path::{PathError, StPath};
pub use snapshot::SnapshotError;
